//! The `sketchd` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        0x534B4431 ("SKD1"), little-endian
//!      4     2  version      protocol version, currently 1
//!      6     1  op           operation (request and its response share it)
//!      7     1  status       0 on requests; response disposition otherwise
//!      8     8  req_id       echoed verbatim in the response
//!     16     4  deadline_ms  relative deadline in ms (0 = none); 0 in responses
//!     20     4  payload_len  bytes of payload following the header
//!     24     4  crc          CRC-32 (IEEE) of the payload bytes
//!     28     …  payload      op-specific body, see the message structs
//! ```
//!
//! All integers are little-endian. The header is fixed-size so a reader can
//! always pull [`HEADER_LEN`] bytes, learn `payload_len`, and then pull the
//! rest — no in-band delimiters, no resynchronization problem. The CRC
//! covers the payload only (the header is validated field-by-field), so a
//! flipped bit in a matrix body is caught before it reaches a kernel.
//!
//! Decoding never panics: every malformed input maps to a typed
//! [`DecodeError`], and [`DecodeError::Truncated`] doubles as the "need
//! more bytes" signal for the streaming [`FrameReader`]. The proto fuzz
//! tests (`tests/proto.rs`) drive random corruption through [`decode`] to
//! hold that line.

use std::fmt;
use std::io::{self, Read as _, Write as _};
use std::net::TcpStream;

/// Frame magic: `"SKD1"` read as a little-endian u32.
pub const MAGIC: u32 = 0x3144_4B53;
/// Protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 28;
/// Hard cap on payload size; larger lengths are rejected at decode time
/// *before* any allocation, so a hostile length prefix cannot OOM the
/// server.
pub const MAX_PAYLOAD: u32 = 64 << 20;

// --- CRC-32 ------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- ops & statuses ----------------------------------------------------

/// Operations the service understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Install a named CSC matrix into the registry.
    LoadMatrix = 1,
    /// Sketch a registered matrix (`Â = S·A`) with a request-chosen seed.
    Sketch = 2,
    /// Sketch-and-precondition least squares against a registered matrix.
    SolveSap = 3,
    /// Snapshot the server's `svc.*` telemetry (delta since startup).
    Stats = 4,
    /// Liveness probe with queue depth and registry occupancy.
    Health = 5,
    /// Orderly shutdown: drain, reply, stop accepting.
    Shutdown = 6,
}

impl Op {
    fn from_u8(v: u8) -> Option<Op> {
        Some(match v {
            1 => Op::LoadMatrix,
            2 => Op::Sketch,
            3 => Op::SolveSap,
            4 => Op::Stats,
            5 => Op::Health,
            6 => Op::Shutdown,
            _ => return None,
        })
    }
}

/// Response disposition. Requests always carry [`Status::Ok`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; payload is the op's response body.
    Ok = 0,
    /// Admission control refused the request (queue full or registry at
    /// budget). Retry later; payload is a human-readable detail string.
    Overloaded = 1,
    /// The request's deadline expired before (or while) it was served.
    DeadlineExceeded = 2,
    /// The request was structurally invalid (bad payload, zero dimension,
    /// unknown flags …).
    BadRequest = 3,
    /// The named matrix is not in the registry.
    NotFound = 4,
    /// The server failed internally (worker panic, non-finite sketch, …);
    /// the connection remains usable.
    Internal = 5,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown = 6,
}

impl Status {
    fn from_u8(v: u8) -> Option<Status> {
        Some(match v {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::DeadlineExceeded,
            3 => Status::BadRequest,
            4 => Status::NotFound,
            5 => Status::Internal,
            6 => Status::ShuttingDown,
            _ => return None,
        })
    }

    /// Human-readable name, used in error frames and client errors.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::DeadlineExceeded => "deadline_exceeded",
            Status::BadRequest => "bad_request",
            Status::NotFound => "not_found",
            Status::Internal => "internal",
            Status::ShuttingDown => "shutting_down",
        }
    }
}

// --- frames ------------------------------------------------------------

/// One decoded frame (header fields + owned payload).
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Operation.
    pub op: Op,
    /// Disposition ([`Status::Ok`] on requests).
    pub status: Status,
    /// Correlation id, echoed from request to response.
    pub req_id: u64,
    /// Relative deadline in milliseconds; 0 means none.
    pub deadline_ms: u32,
    /// Op-specific body.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A request frame.
    pub fn request(op: Op, req_id: u64, deadline_ms: u32, payload: Vec<u8>) -> Frame {
        Frame {
            op,
            status: Status::Ok,
            req_id,
            deadline_ms,
            payload,
        }
    }

    /// A response frame echoing `req_id`.
    pub fn response(op: Op, status: Status, req_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            op,
            status,
            req_id,
            deadline_ms: 0,
            payload,
        }
    }

    /// An error response whose payload is a UTF-8 detail string.
    pub fn error(op: Op, status: Status, req_id: u64, detail: &str) -> Frame {
        Frame::response(op, status, req_id, detail.as_bytes().to_vec())
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.op as u8);
        out.push(self.status as u8);
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Everything that can go wrong turning bytes into a [`Frame`].
#[derive(Clone, Debug, PartialEq)]
pub enum DecodeError {
    /// Not enough bytes yet; `need` is the total the frame requires. For a
    /// streaming reader this means "read more"; at end-of-input it means
    /// the peer hung up mid-frame.
    Truncated {
        /// Total bytes the frame needs.
        need: usize,
        /// Bytes available.
        got: usize,
    },
    /// First four bytes were not [`MAGIC`].
    BadMagic(u32),
    /// Unsupported protocol version.
    BadVersion(u16),
    /// Unknown op byte.
    UnknownOp(u8),
    /// Unknown status byte.
    UnknownStatus(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared length.
        len: u32,
        /// The cap it violated.
        max: u32,
    },
    /// Payload bytes did not match the header CRC.
    BadCrc {
        /// CRC the header declared.
        expected: u32,
        /// CRC of the received payload.
        got: u32,
    },
    /// Payload body failed to parse for its op.
    BadPayload(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { need, got } => {
                write!(f, "truncated frame: need {need} bytes, got {got}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::UnknownOp(o) => write!(f, "unknown op {o}"),
            DecodeError::UnknownStatus(s) => write!(f, "unknown status {s}"),
            DecodeError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            DecodeError::BadCrc { expected, got } => {
                write!(
                    f,
                    "payload crc mismatch: header says {expected:#010x}, computed {got:#010x}"
                )
            }
            DecodeError::BadPayload(what) => write!(f, "bad payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Copy a constant-width window out of `b`. Callers pass slices whose
/// length is `N` by construction (header fields, `take(N)` results), so
/// this cannot miscopy; it exists to keep `try_into().unwrap()` off
/// library decode paths.
fn arr<const N: usize>(b: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(b);
    out
}

/// Decode one frame from the front of `buf`. On success returns the frame
/// and the number of bytes consumed. [`DecodeError::Truncated`] means the
/// buffer holds a valid prefix — callers with a stream should read more
/// and retry; every other error is fatal for the buffer's framing.
pub fn decode(buf: &[u8]) -> Result<(Frame, usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            need: HEADER_LEN,
            got: buf.len(),
        });
    }
    let magic = u32::from_le_bytes(arr(&buf[0..4]));
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(arr(&buf[4..6]));
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let op = Op::from_u8(buf[6]).ok_or(DecodeError::UnknownOp(buf[6]))?;
    let status = Status::from_u8(buf[7]).ok_or(DecodeError::UnknownStatus(buf[7]))?;
    let req_id = u64::from_le_bytes(arr(&buf[8..16]));
    let deadline_ms = u32::from_le_bytes(arr(&buf[16..20]));
    let payload_len = u32::from_le_bytes(arr(&buf[20..24]));
    if payload_len > MAX_PAYLOAD {
        return Err(DecodeError::Oversized {
            len: payload_len,
            max: MAX_PAYLOAD,
        });
    }
    let crc = u32::from_le_bytes(arr(&buf[24..28]));
    let total = HEADER_LEN + payload_len as usize;
    if buf.len() < total {
        return Err(DecodeError::Truncated {
            need: total,
            got: buf.len(),
        });
    }
    let payload = buf[HEADER_LEN..total].to_vec();
    let got = crc32(&payload);
    if got != crc {
        return Err(DecodeError::BadCrc { expected: crc, got });
    }
    Ok((
        Frame {
            op,
            status,
            req_id,
            deadline_ms,
            payload,
        },
        total,
    ))
}

// --- streaming reader ---------------------------------------------------

/// Why a [`FrameReader`] read ended without a frame.
#[derive(Debug)]
pub enum FrameReadError {
    /// Peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The socket read timed out with a partial (or empty) buffer; the
    /// buffered bytes are kept, so callers can poll a shutdown flag and
    /// call [`FrameReader::next_frame`] again.
    TimedOut,
    /// Transport failure.
    Io(io::Error),
    /// The byte stream is corrupt (bad magic / version / CRC / …); the
    /// connection can no longer be framed.
    Decode(DecodeError),
}

impl fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReadError::Closed => write!(f, "connection closed"),
            FrameReadError::TimedOut => write!(f, "read timed out"),
            FrameReadError::Io(e) => write!(f, "io error: {e}"),
            FrameReadError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

/// Incremental frame reader over a [`TcpStream`]: accumulates bytes across
/// short reads and hands out whole frames.
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader { buf: Vec::new() }
    }

    /// Read until one whole frame is buffered, then decode and consume it.
    /// Honors the stream's configured read timeout by returning
    /// [`FrameReadError::TimedOut`] (buffer preserved).
    pub fn next_frame(&mut self, stream: &mut TcpStream) -> Result<Frame, FrameReadError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match decode(&self.buf) {
                Ok((frame, used)) => {
                    self.buf.drain(..used);
                    return Ok(frame);
                }
                Err(DecodeError::Truncated { .. }) => {}
                Err(e) => return Err(FrameReadError::Decode(e)),
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        FrameReadError::Closed
                    } else {
                        FrameReadError::Decode(DecodeError::Truncated {
                            need: HEADER_LEN.max(self.buf.len() + 1),
                            got: self.buf.len(),
                        })
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(FrameReadError::TimedOut)
                }
                Err(e) => return Err(FrameReadError::Io(e)),
            }
        }
    }
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

/// Write a whole frame to the stream.
pub fn write_frame(stream: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    stream.write_all(&frame.encode())
}

// --- payload cursors ----------------------------------------------------

/// Bounds-checked payload reader; every overrun is a typed
/// [`DecodeError::BadPayload`], never a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DecodeError::BadPayload(what))?;
        if end > self.buf.len() {
            return Err(DecodeError::BadPayload(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(arr(self.take(4, what)?)))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(arr(self.take(8, what)?)))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(arr(self.take(8, what)?)))
    }

    /// Read a length-prefixed UTF-8 string (u32 length).
    pub fn str(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadPayload(what))
    }

    /// Read a length-prefixed `u64` vector (u32 count). The count is
    /// sanity-bounded by the remaining payload before allocating.
    pub fn vec_u64(&mut self, what: &'static str) -> Result<Vec<u64>, DecodeError> {
        let n = self.u32(what)? as usize;
        if n > self.buf.len().saturating_sub(self.pos) / 8 {
            return Err(DecodeError::BadPayload(what));
        }
        (0..n).map(|_| self.u64(what)).collect()
    }

    /// Read a length-prefixed `f64` vector (u32 count), bounds-checked
    /// before allocating.
    pub fn vec_f64(&mut self, what: &'static str) -> Result<Vec<f64>, DecodeError> {
        let n = self.u32(what)? as usize;
        if n > self.buf.len().saturating_sub(self.pos) / 8 {
            return Err(DecodeError::BadPayload(what));
        }
        (0..n).map(|_| self.f64(what)).collect()
    }

    /// True when the whole payload was consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Payload writer mirroring [`Reader`].
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `f64`.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Append a length-prefixed `u64` vector.
    pub fn vec_u64(&mut self, v: &[u64]) -> &mut Self {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
        self
    }

    /// Append a length-prefixed `f64` vector.
    pub fn vec_f64(&mut self, v: &[f64]) -> &mut Self {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
        self
    }

    /// Take the finished payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

// --- message bodies ------------------------------------------------------

/// Where a [`LoadMatrixReq`]'s matrix comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum MatrixSource {
    /// Server-side generation via `datagen::uniform_random` — ships four
    /// integers instead of megabytes, and is what the load generator uses.
    Generate {
        /// Rows.
        m: u64,
        /// Columns.
        n: u64,
        /// Target density in [0, 1].
        density: f64,
        /// Generator seed.
        seed: u64,
    },
    /// Explicit CSC parts, validated server-side with
    /// `CscMatrix::try_new` + `validate`.
    Inline {
        /// Rows.
        nrows: u64,
        /// Columns.
        ncols: u64,
        /// CSC column pointers (`ncols + 1`).
        col_ptr: Vec<u64>,
        /// Row indices per nonzero.
        row_idx: Vec<u64>,
        /// Values per nonzero.
        values: Vec<f64>,
    },
}

/// `LoadMatrix` request body.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadMatrixReq {
    /// Registry handle to install under (replaces an existing entry).
    pub name: String,
    /// Matrix contents.
    pub source: MatrixSource,
}

impl LoadMatrixReq {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.name);
        match &self.source {
            MatrixSource::Generate {
                m,
                n,
                density,
                seed,
            } => {
                w.u8(0).u64(*m).u64(*n).f64(*density).u64(*seed);
            }
            MatrixSource::Inline {
                nrows,
                ncols,
                col_ptr,
                row_idx,
                values,
            } => {
                w.u8(1)
                    .u64(*nrows)
                    .u64(*ncols)
                    .vec_u64(col_ptr)
                    .vec_u64(row_idx)
                    .vec_f64(values);
            }
        }
        w.finish()
    }

    /// Parse.
    pub fn decode(payload: &[u8]) -> Result<LoadMatrixReq, DecodeError> {
        let mut r = Reader::new(payload);
        let name = r.str("load.name")?;
        let source = match r.u8("load.kind")? {
            0 => MatrixSource::Generate {
                m: r.u64("load.m")?,
                n: r.u64("load.n")?,
                density: r.f64("load.density")?,
                seed: r.u64("load.seed")?,
            },
            1 => MatrixSource::Inline {
                nrows: r.u64("load.nrows")?,
                ncols: r.u64("load.ncols")?,
                col_ptr: r.vec_u64("load.col_ptr")?,
                row_idx: r.vec_u64("load.row_idx")?,
                values: r.vec_f64("load.values")?,
            },
            _ => return Err(DecodeError::BadPayload("load.kind")),
        };
        if !r.done() {
            return Err(DecodeError::BadPayload("load.trailing"));
        }
        Ok(LoadMatrixReq { name, source })
    }
}

/// `LoadMatrix` response body.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadMatrixResp {
    /// Rows of the installed matrix.
    pub nrows: u64,
    /// Columns.
    pub ncols: u64,
    /// Nonzeros.
    pub nnz: u64,
    /// Bytes charged against the registry budget.
    pub bytes: u64,
    /// Entries evicted to make room.
    pub evicted: u64,
}

impl LoadMatrixResp {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.nrows)
            .u64(self.ncols)
            .u64(self.nnz)
            .u64(self.bytes)
            .u64(self.evicted);
        w.finish()
    }

    /// Parse.
    pub fn decode(payload: &[u8]) -> Result<LoadMatrixResp, DecodeError> {
        let mut r = Reader::new(payload);
        let out = LoadMatrixResp {
            nrows: r.u64("loadresp.nrows")?,
            ncols: r.u64("loadresp.ncols")?,
            nnz: r.u64("loadresp.nnz")?,
            bytes: r.u64("loadresp.bytes")?,
            evicted: r.u64("loadresp.evicted")?,
        };
        if !r.done() {
            return Err(DecodeError::BadPayload("loadresp.trailing"));
        }
        Ok(out)
    }
}

/// `Sketch` request flag bits.
pub mod sketch_flags {
    /// Opt this request out of batching (it runs alone even if compatible
    /// neighbors are queued). The load generator's unbatched arm sets it.
    pub const NO_BATCH: u32 = 1;
    /// Reply with a checksum (Frobenius norm + bit-XOR) instead of the full
    /// `d×n` sketch body — the latency-benchmark mode, where shipping
    /// megabytes per response would measure the loopback, not the service.
    pub const CHECKSUM_ONLY: u32 = 2;
    /// All bits this build understands; others are rejected as bad requests.
    pub const KNOWN: u32 = NO_BATCH | CHECKSUM_ONLY;
}

/// `Sketch` request body.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchReq {
    /// Registry handle of the matrix to sketch.
    pub name: String,
    /// Sketch rows `d`.
    pub d: u64,
    /// Blocking along `d`.
    pub b_d: u64,
    /// Blocking along `n`.
    pub b_n: u64,
    /// Seed of the implicit random matrix `S`.
    pub seed: u64,
    /// [`sketch_flags`] bits.
    pub flags: u32,
}

impl SketchReq {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.name)
            .u64(self.d)
            .u64(self.b_d)
            .u64(self.b_n)
            .u64(self.seed)
            .u32(self.flags);
        w.finish()
    }

    /// Parse.
    pub fn decode(payload: &[u8]) -> Result<SketchReq, DecodeError> {
        let mut r = Reader::new(payload);
        let out = SketchReq {
            name: r.str("sketch.name")?,
            d: r.u64("sketch.d")?,
            b_d: r.u64("sketch.b_d")?,
            b_n: r.u64("sketch.b_n")?,
            seed: r.u64("sketch.seed")?,
            flags: r.u32("sketch.flags")?,
        };
        if !r.done() {
            return Err(DecodeError::BadPayload("sketch.trailing"));
        }
        Ok(out)
    }
}

/// `Sketch` response body.
#[derive(Clone, Debug, PartialEq)]
pub enum SketchResult {
    /// The full sketch, column-major.
    Full {
        /// Rows (`d`).
        d: u64,
        /// Columns (`n` of the operand).
        n: u64,
        /// Size of the server-side batch this request rode in (1 when it
        /// ran alone) — observability for the batching tests and loadgen.
        batch: u32,
        /// Column-major `d×n` values.
        data: Vec<f64>,
    },
    /// Checksum only ([`sketch_flags::CHECKSUM_ONLY`]).
    Checksum {
        /// Rows (`d`).
        d: u64,
        /// Columns.
        n: u64,
        /// Server-side batch size.
        batch: u32,
        /// Frobenius norm of the sketch.
        fro: f64,
        /// XOR of all value bit patterns — order-independent bitwise
        /// fingerprint, comparable against a local reference sketch.
        xor: u64,
    },
}

impl SketchResult {
    /// Server-side batch size this request was served in.
    pub fn batch(&self) -> u32 {
        match self {
            SketchResult::Full { batch, .. } | SketchResult::Checksum { batch, .. } => *batch,
        }
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            SketchResult::Full { d, n, batch, data } => {
                w.u8(0).u64(*d).u64(*n).u32(*batch).vec_f64(data);
            }
            SketchResult::Checksum {
                d,
                n,
                batch,
                fro,
                xor,
            } => {
                w.u8(1).u64(*d).u64(*n).u32(*batch).f64(*fro).u64(*xor);
            }
        }
        w.finish()
    }

    /// Parse.
    pub fn decode(payload: &[u8]) -> Result<SketchResult, DecodeError> {
        let mut r = Reader::new(payload);
        let out = match r.u8("sketchresp.kind")? {
            0 => SketchResult::Full {
                d: r.u64("sketchresp.d")?,
                n: r.u64("sketchresp.n")?,
                batch: r.u32("sketchresp.batch")?,
                data: r.vec_f64("sketchresp.data")?,
            },
            1 => SketchResult::Checksum {
                d: r.u64("sketchresp.d")?,
                n: r.u64("sketchresp.n")?,
                batch: r.u32("sketchresp.batch")?,
                fro: r.f64("sketchresp.fro")?,
                xor: r.u64("sketchresp.xor")?,
            },
            _ => return Err(DecodeError::BadPayload("sketchresp.kind")),
        };
        if !r.done() {
            return Err(DecodeError::BadPayload("sketchresp.trailing"));
        }
        Ok(out)
    }
}

/// `SolveSap` request body.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveSapReq {
    /// Registry handle of the system matrix.
    pub name: String,
    /// Oversampling factor γ.
    pub gamma: u64,
    /// Sketch seed.
    pub seed: u64,
    /// Right-hand side (`nrows` long).
    pub rhs: Vec<f64>,
}

impl SolveSapReq {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.name)
            .u64(self.gamma)
            .u64(self.seed)
            .vec_f64(&self.rhs);
        w.finish()
    }

    /// Parse.
    pub fn decode(payload: &[u8]) -> Result<SolveSapReq, DecodeError> {
        let mut r = Reader::new(payload);
        let out = SolveSapReq {
            name: r.str("sap.name")?,
            gamma: r.u64("sap.gamma")?,
            seed: r.u64("sap.seed")?,
            rhs: r.vec_f64("sap.rhs")?,
        };
        if !r.done() {
            return Err(DecodeError::BadPayload("sap.trailing"));
        }
        Ok(out)
    }
}

/// `SolveSap` response body.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveSapResp {
    /// LSQR iterations.
    pub iters: u64,
    /// Numerical rank retained.
    pub rank: u64,
    /// Escalation retries consumed.
    pub retries: u32,
    /// Whether the QR→SVD fallback fired.
    pub fallback_svd: bool,
    /// The solution vector.
    pub x: Vec<f64>,
}

impl SolveSapResp {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.iters)
            .u64(self.rank)
            .u32(self.retries)
            .u8(self.fallback_svd as u8)
            .vec_f64(&self.x);
        w.finish()
    }

    /// Parse.
    pub fn decode(payload: &[u8]) -> Result<SolveSapResp, DecodeError> {
        let mut r = Reader::new(payload);
        let out = SolveSapResp {
            iters: r.u64("sapresp.iters")?,
            rank: r.u64("sapresp.rank")?,
            retries: r.u32("sapresp.retries")?,
            fallback_svd: r.u8("sapresp.fallback")? != 0,
            x: r.vec_f64("sapresp.x")?,
        };
        if !r.done() {
            return Err(DecodeError::BadPayload("sapresp.trailing"));
        }
        Ok(out)
    }
}

/// `Health` response body.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthResp {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Matrices resident in the registry.
    pub matrices: u64,
    /// The server's configured max batch size.
    pub batch_max: u32,
}

impl HealthResp {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.uptime_ms)
            .u64(self.queue_depth)
            .u64(self.matrices)
            .u32(self.batch_max);
        w.finish()
    }

    /// Parse.
    pub fn decode(payload: &[u8]) -> Result<HealthResp, DecodeError> {
        let mut r = Reader::new(payload);
        let out = HealthResp {
            uptime_ms: r.u64("health.uptime")?,
            queue_depth: r.u64("health.queue")?,
            matrices: r.u64("health.matrices")?,
            batch_max: r.u32("health.batch_max")?,
        };
        if !r.done() {
            return Err(DecodeError::BadPayload("health.trailing"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let f = Frame::request(Op::Sketch, 42, 1500, vec![1, 2, 3, 4, 5]);
        let bytes = f.encode();
        let (g, used) = decode(&bytes).expect("roundtrip");
        assert_eq!(used, bytes.len());
        assert_eq!(f, g);
    }

    #[test]
    fn truncated_header_and_payload_signal_need() {
        let f = Frame::request(Op::Health, 7, 0, vec![9; 10]);
        let bytes = f.encode();
        match decode(&bytes[..HEADER_LEN - 1]) {
            Err(DecodeError::Truncated { need, got }) => {
                assert_eq!(need, HEADER_LEN);
                assert_eq!(got, HEADER_LEN - 1);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        match decode(&bytes[..bytes.len() - 1]) {
            Err(DecodeError::Truncated { need, got }) => {
                assert_eq!(need, bytes.len());
                assert_eq!(got, bytes.len() - 1);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_crc_is_typed() {
        let f = Frame::request(Op::Sketch, 1, 0, vec![1, 2, 3]);
        let mut bytes = f.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadCrc { .. })));
    }

    #[test]
    fn message_bodies_roundtrip() {
        let load = LoadMatrixReq {
            name: "a".into(),
            source: MatrixSource::Inline {
                nrows: 3,
                ncols: 2,
                col_ptr: vec![0, 1, 2],
                row_idx: vec![0, 2],
                values: vec![1.5, -2.5],
            },
        };
        assert_eq!(LoadMatrixReq::decode(&load.encode()).unwrap(), load);

        let sk = SketchReq {
            name: "a".into(),
            d: 8,
            b_d: 4,
            b_n: 2,
            seed: 99,
            flags: sketch_flags::CHECKSUM_ONLY,
        };
        assert_eq!(SketchReq::decode(&sk.encode()).unwrap(), sk);

        let res = SketchResult::Checksum {
            d: 8,
            n: 2,
            batch: 4,
            fro: 3.25,
            xor: 0xDEAD,
        };
        assert_eq!(SketchResult::decode(&res.encode()).unwrap(), res);

        let sap = SolveSapReq {
            name: "a".into(),
            gamma: 2,
            seed: 5,
            rhs: vec![1.0, 2.0, 3.0],
        };
        assert_eq!(SolveSapReq::decode(&sap.encode()).unwrap(), sap);
    }

    #[test]
    fn vec_length_is_bounds_checked_before_allocation() {
        // A u32 count of u64::MAX-ish elements with a 4-byte body must be
        // rejected without allocating.
        let mut w = Writer::new();
        w.u32(0xFFFF_FFFF);
        w.u32(7);
        let body = w.finish();
        let mut r = Reader::new(&body);
        assert!(matches!(r.vec_f64("x"), Err(DecodeError::BadPayload(_))));
    }
}
