//! The `sketchd` server: acceptor → bounded queue → batching workers.
//!
//! Threading model (all std):
//!
//! * One **acceptor** thread blocks on [`std::net::TcpListener::accept`]
//!   and spawns a connection thread per client.
//! * One **connection** thread per client frames requests off the socket
//!   ([`proto::FrameReader`] with a short read timeout so it can poll the
//!   shutdown flag), answers `Health`/`Stats`/`Shutdown` inline, and
//!   pushes work ops (`LoadMatrix`/`Sketch`/`SolveSap`) onto the shared
//!   queue under admission control.
//! * A **worker host** thread runs the worker loops via
//!   [`parkit::for_each`] — the same fork/join substrate as the kernels,
//!   so worker panics are contained, stashed and re-raised by parkit, and
//!   per-thread telemetry is flushed at the join.
//!
//! Admission control is three gates at enqueue time: shutting-down →
//! `ShuttingDown`, queue at `queue_cap` → `Overloaded` (plus the
//! `svc.rejected_overload` counter), malformed request → `BadRequest`.
//! Deadlines are enforced again at dispatch: a request whose relative
//! deadline passed while queued is answered `DeadlineExceeded` without
//! running its kernel (`svc.deadline_missed`).
//!
//! The **batcher** lives in the worker loop: after popping a `Sketch` job
//! it drains up to `batch_max − 1` further queued `Sketch` jobs against
//! the same `(name, d, b_d, b_n)` and serves them all with one
//! [`sketchcore::sketch_alg3_multi`] pass — one traversal of `A` for the
//! whole batch. Responses are per-request and bitwise identical to
//! sequential execution (the kernel's contract, re-asserted by the
//! service tests).
//!
//! Telemetry is **snapshot-and-diff**: the server takes an
//! [`obskit::snapshot`] baseline at startup and every `Stats` request
//! subtracts it with [`obskit::Snapshot::counters_since`]. The server
//! never calls `obskit::reset()` — see the warning on that function.
//!
//! Failpoints (swept by chaoscheck's service cells):
//! `svc/accept` drops a just-accepted connection, `svc/decode` fails a
//! request at decode time (typed `BadRequest`, connection survives),
//! `svc/dispatch` panics inside the worker's per-batch `catch_unwind`
//! (typed `Internal`, worker and queue survive), `svc/reply` kills the
//! reply write (client sees a dropped connection, server moves on).

use crate::proto::{
    sketch_flags, Frame, FrameReadError, FrameReader, HealthResp, LoadMatrixReq, LoadMatrixResp,
    MatrixSource, Op, SketchReq, SketchResult, SolveSapReq, SolveSapResp, Status,
};
use crate::registry::{Registry, RegistryError};
use lstsq::{RecoveryPolicy, SapOptions, SolveError};
use rngkit::{FastRng, UnitUniform};
use sketchcore::error::panic_payload_to_string;
use sketchcore::{SketchConfig, SketchError};
use sparsekit::CscMatrix;
use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything tunable about a server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Admission-control cap on queued requests.
    pub queue_cap: usize,
    /// Worker loops (parkit threads executing kernels).
    pub workers: usize,
    /// Largest sketch batch one traversal may serve.
    pub batch_max: usize,
    /// Registry byte budget.
    pub registry_budget: u64,
    /// Test hook: artificial per-job service delay, for deterministic
    /// deadline/overload tests. 0 in production.
    pub worker_delay_ms: u64,
    /// Socket read timeout — the shutdown-poll period of connection
    /// threads.
    pub read_timeout_ms: u64,
    /// Socket write timeout — bounds how long a slow client can pin a
    /// worker in a reply write.
    pub write_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_cap: 64,
            workers: 1,
            batch_max: 8,
            registry_budget: Registry::default_budget(),
            worker_delay_ms: 0,
            read_timeout_ms: 200,
            write_timeout_ms: 5000,
        }
    }
}

/// The reply side of a connection, shared between its reader thread and
/// the workers answering its requests.
struct Conn {
    stream: Mutex<TcpStream>,
}

impl Conn {
    /// Write a frame; on any failure (including the `svc/reply` failpoint)
    /// the stream is shut down so the client observes a closed connection
    /// rather than a hang.
    fn send(&self, frame: &Frame) {
        self.send_bytes(&frame.encode());
    }

    /// Write pre-encoded frames in a single syscall. The batcher's reply
    /// path concatenates every same-connection reply of a batch into one
    /// buffer, so a pipelined client costs one write per batch instead of
    /// one per request.
    fn send_bytes(&self, bytes: &[u8]) {
        use std::io::Write;
        let mut s = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        if faultkit::armed() && faultkit::fire("svc/reply") {
            let _ = s.shutdown(NetShutdown::Both);
            return;
        }
        if s.write_all(bytes).and_then(|()| s.flush()).is_err() {
            let _ = s.shutdown(NetShutdown::Both);
        }
    }
}

/// A parsed work op waiting in the queue.
enum Work {
    Load(LoadMatrixReq),
    Sketch(SketchReq),
    Solve(SolveSapReq),
}

struct Job {
    op: Op,
    req_id: u64,
    deadline: Option<Instant>,
    enqueued: Instant,
    work: Work,
    conn: Arc<Conn>,
}

impl Job {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }

    fn reply_error(&self, status: Status, detail: &str) {
        self.conn
            .send(&Frame::error(self.op, status, self.req_id, detail));
    }
}

struct Shared {
    cfg: ServerConfig,
    registry: Registry,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    start: Instant,
    /// The bound address — needed to self-connect and unblock the
    /// acceptor's blocking `accept` during shutdown.
    addr: SocketAddr,
    /// Telemetry baseline for `Stats` snapshot-and-diff.
    base: obskit::Snapshot,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flip the shutdown flag and wake every sleeper: workers on the
    /// condvar, the acceptor via a throwaway self-connection (it re-checks
    /// the flag on wake). Idempotent; used by both [`Server::shutdown`]
    /// and the wire-level `Shutdown` op.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        let _ = TcpStream::connect(self.addr);
    }

    fn queue_depth(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// A running server instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    worker_host: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind, spawn acceptor + workers, and return immediately.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: Registry::new(cfg.registry_budget),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
            addr,
            base: obskit::snapshot(),
            cfg,
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let worker_host = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sketchd-workers".into())
                .spawn(move || {
                    let n = shared.cfg.workers.max(1);
                    // parkit supplies panic containment and the telemetry
                    // flush-at-join for the worker pool, mirroring the kernels.
                    parkit::with_threads(n, || {
                        parkit::for_each((0..n).collect(), |_w| worker_loop(&shared));
                    });
                })?
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("sketchd-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &shared, &conns);
                })?
        };

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            worker_host: Some(worker_host),
            conns,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin an orderly shutdown: stop accepting, let workers drain the
    /// queue, wake every sleeper. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until every thread the server spawned has exited. Call after
    /// [`Server::shutdown`] (or after a client sent the `Shutdown` op).
    /// Ensures zero leaked threads — asserted by the verify.sh smoke test.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.worker_host.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down() {
            return;
        }
        if faultkit::armed() && faultkit::fire("svc/accept") {
            // Injected accept failure: the connection is dropped before any
            // byte is read; clients see a clean close and may retry.
            let _ = stream.shutdown(NetShutdown::Both);
            continue;
        }
        let shared2 = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("sketchd-conn".into())
            .spawn(move || conn_loop(stream, &shared2));
        if let Ok(h) = spawned {
            conns.lock().unwrap_or_else(|e| e.into_inner()).push(h);
        }
    }
}

fn conn_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        shared.cfg.write_timeout_ms.max(1),
    )));
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let conn = Arc::new(Conn {
        stream: Mutex::new(write_half),
    });
    let mut reader = FrameReader::new();
    loop {
        if shared.shutting_down() {
            return;
        }
        let frame = match reader.next_frame(&mut stream) {
            Ok(f) => f,
            Err(FrameReadError::TimedOut) => continue,
            Err(FrameReadError::Closed) | Err(FrameReadError::Io(_)) => return,
            Err(FrameReadError::Decode(e)) => {
                // The byte stream can no longer be framed: answer with a
                // typed error, then close. (Request-level payload errors,
                // by contrast, keep the connection alive — see
                // `admit_work`.)
                conn.send(&Frame::error(
                    Op::Health,
                    Status::BadRequest,
                    0,
                    &e.to_string(),
                ));
                return;
            }
        };
        if !handle_frame(frame, &conn, shared) {
            return;
        }
    }
}

/// Dispatch one request frame. Returns `false` when the connection should
/// close (shutdown requested).
fn handle_frame(frame: Frame, conn: &Arc<Conn>, shared: &Arc<Shared>) -> bool {
    if faultkit::armed() && faultkit::fire("svc/decode") {
        // Injected decode failure: typed BadRequest, connection survives —
        // one fault, one error frame, next request unaffected.
        conn.send(&Frame::error(
            frame.op,
            Status::BadRequest,
            frame.req_id,
            "fault injected: svc/decode",
        ));
        return true;
    }
    match frame.op {
        Op::Health => {
            let resp = HealthResp {
                uptime_ms: shared.start.elapsed().as_millis() as u64,
                queue_depth: shared.queue_depth() as u64,
                matrices: shared.registry.len() as u64,
                batch_max: shared.cfg.batch_max as u32,
            };
            conn.send(&Frame::response(
                Op::Health,
                Status::Ok,
                frame.req_id,
                resp.encode(),
            ));
            true
        }
        Op::Stats => {
            // Snapshot-and-diff: read-only against the global registry, so
            // concurrent Stats calls cannot race each other or the workers.
            let json = stats_json(shared);
            conn.send(&Frame::response(
                Op::Stats,
                Status::Ok,
                frame.req_id,
                json.into_bytes(),
            ));
            true
        }
        Op::Shutdown => {
            shared.begin_shutdown();
            conn.send(&Frame::response(
                Op::Shutdown,
                Status::Ok,
                frame.req_id,
                Vec::new(),
            ));
            false
        }
        Op::LoadMatrix | Op::Sketch | Op::SolveSap => {
            admit_work(frame, conn, shared);
            true
        }
    }
}

/// Parse + admission-control a work op, enqueueing it or answering with a
/// typed rejection. Payload errors answer `BadRequest` and keep the
/// connection alive.
fn admit_work(frame: Frame, conn: &Arc<Conn>, shared: &Arc<Shared>) {
    let work = match parse_work(&frame) {
        Ok(w) => w,
        Err(detail) => {
            conn.send(&Frame::error(
                frame.op,
                Status::BadRequest,
                frame.req_id,
                &detail,
            ));
            return;
        }
    };
    if shared.shutting_down() {
        conn.send(&Frame::error(
            frame.op,
            Status::ShuttingDown,
            frame.req_id,
            "server is shutting down",
        ));
        return;
    }
    let now = Instant::now();
    let job = Job {
        op: frame.op,
        req_id: frame.req_id,
        deadline: (frame.deadline_ms > 0)
            .then(|| now + Duration::from_millis(frame.deadline_ms as u64)),
        enqueued: now,
        work,
        conn: Arc::clone(conn),
    };
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    if q.len() >= shared.cfg.queue_cap {
        drop(q);
        obskit::add(obskit::Ctr::SvcRejectedOverload, 1);
        conn.send(&Frame::error(
            frame.op,
            Status::Overloaded,
            frame.req_id,
            &format!("queue at capacity ({})", shared.cfg.queue_cap),
        ));
        return;
    }
    q.push_back(job);
    drop(q);
    obskit::add(obskit::Ctr::SvcAccepted, 1);
    shared.queue_cv.notify_one();
}

/// Parse and sanity-check a work payload. Returns a human-readable
/// rejection detail on failure.
fn parse_work(frame: &Frame) -> Result<Work, String> {
    match frame.op {
        Op::LoadMatrix => {
            let req = LoadMatrixReq::decode(&frame.payload).map_err(|e| e.to_string())?;
            if req.name.is_empty() {
                return Err("matrix name must be non-empty".into());
            }
            if let MatrixSource::Generate { m, n, density, .. } = &req.source {
                if *m == 0 || *n == 0 {
                    return Err("generated matrix must be non-empty".into());
                }
                if !(0.0..=1.0).contains(density) {
                    return Err(format!("density {density} outside [0, 1]"));
                }
            }
            Ok(Work::Load(req))
        }
        Op::Sketch => {
            let req = SketchReq::decode(&frame.payload).map_err(|e| e.to_string())?;
            if req.d == 0 || req.b_d == 0 || req.b_n == 0 {
                return Err("d, b_d and b_n must all be positive".into());
            }
            if req.flags & !sketch_flags::KNOWN != 0 {
                return Err(format!(
                    "unknown sketch flags {:#x}",
                    req.flags & !sketch_flags::KNOWN
                ));
            }
            Ok(Work::Sketch(req))
        }
        Op::SolveSap => {
            let req = SolveSapReq::decode(&frame.payload).map_err(|e| e.to_string())?;
            if req.gamma == 0 {
                return Err("gamma must be at least 1".into());
            }
            Ok(Work::Solve(req))
        }
        _ => Err("not a work op".into()),
    }
}

// --- workers ------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                if shared.shutting_down() {
                    return;
                }
                q = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        obskit::hist_record_ns("svc/queue_wait", job.enqueued.elapsed().as_nanos() as u64);
        if shared.cfg.worker_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.cfg.worker_delay_ms));
        }
        if job.expired() {
            obskit::add(obskit::Ctr::SvcDeadlineMissed, 1);
            job.reply_error(Status::DeadlineExceeded, "deadline expired while queued");
            continue;
        }
        match &job.work {
            Work::Load(_) => execute_load(shared, job),
            Work::Solve(_) => execute_solve(shared, job),
            Work::Sketch(req) => {
                let batch = if req.flags & sketch_flags::NO_BATCH != 0 {
                    vec![job]
                } else {
                    drain_batch(shared, job)
                };
                execute_sketch_batch(shared, batch);
            }
        }
        obskit::flush_thread();
    }
}

/// Pull queued `Sketch` jobs compatible with `first` (same matrix, same
/// blocking, batching not opted out) up to `batch_max`, preserving the
/// queue order of everything left behind.
fn drain_batch(shared: &Arc<Shared>, first: Job) -> Vec<Job> {
    let proto_req = match &first.work {
        Work::Sketch(r) => r.clone(),
        _ => unreachable!("drain_batch is only called for sketch jobs"),
    };
    let mut batch = vec![first];
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    let mut i = 0;
    while i < q.len() && batch.len() < shared.cfg.batch_max.max(1) {
        let compatible = matches!(
            &q[i].work,
            Work::Sketch(r)
                if r.name == proto_req.name
                    && r.d == proto_req.d
                    && r.b_d == proto_req.b_d
                    && r.b_n == proto_req.b_n
                    && r.flags & sketch_flags::NO_BATCH == 0
        );
        if compatible {
            if let Some(j) = q.remove(i) {
                batch.push(j);
            }
        } else {
            i += 1;
        }
    }
    batch
}

/// Run one sketch batch: one `sketch_alg3_multi` traversal, one reply per
/// member. Any panic in the kernel (or the `svc/dispatch` failpoint) is
/// contained here — each member gets a typed `Internal` frame and the
/// worker returns to the queue.
fn execute_sketch_batch(shared: &Arc<Shared>, mut batch: Vec<Job>) {
    obskit::hist_record_ns("svc/batch_size", batch.len() as u64);
    if batch.len() >= 2 {
        obskit::add(obskit::Ctr::SvcBatched, batch.len() as u64);
    }
    // Deadline re-check per member: queued time plus the drain may have
    // consumed someone's budget.
    batch.retain(|j| {
        if j.expired() {
            obskit::add(obskit::Ctr::SvcDeadlineMissed, 1);
            j.reply_error(Status::DeadlineExceeded, "deadline expired before dispatch");
            false
        } else {
            true
        }
    });
    if batch.is_empty() {
        return;
    }
    let req0 = match &batch[0].work {
        Work::Sketch(r) => r.clone(),
        _ => unreachable!("sketch batch holds sketch jobs"),
    };
    let a = match shared.registry.get(&req0.name) {
        Ok(a) => a,
        Err(e) => {
            for j in &batch {
                j.reply_error(Status::NotFound, &e.to_string());
            }
            return;
        }
    };
    let (d, n) = (req0.d as usize, a.ncols());
    // Output budget gate: the batch materializes batch×d×n doubles.
    let out_bytes = 8u64 * d as u64 * n as u64 * batch.len() as u64;
    if out_bytes > sketchcore::robust::memory_budget_bytes() {
        for j in &batch {
            j.reply_error(
                Status::Overloaded,
                &format!("sketch output ({out_bytes} B) exceeds the memory budget"),
            );
        }
        return;
    }
    let cfg = SketchConfig::new(d, req0.b_d as usize, req0.b_n as usize, req0.seed);
    let seeds: Vec<u64> = batch
        .iter()
        .map(|j| match &j.work {
            Work::Sketch(r) => r.seed,
            _ => unreachable!(),
        })
        .collect();
    let samplers: Vec<_> = seeds
        .iter()
        .map(|&s| UnitUniform::<f64>::sampler(FastRng::new(s)))
        .collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if faultkit::armed() && faultkit::fire("svc/dispatch") {
            panic!("fault injected: svc/dispatch");
        }
        sketchcore::try_sketch_alg3_multi(a.as_ref(), &cfg, &samplers, false)
    }))
    .unwrap_or_else(|p| {
        Err(SketchError::WorkerPanic(panic_payload_to_string(
            p.as_ref(),
        )))
    });
    match result {
        Ok(outs) => {
            // Replies are coalesced per connection: all of one client's
            // replies in this batch go out in a single write, preserving
            // per-connection request order (the drain keeps queue order).
            let bsz = batch.len() as u32;
            let mut groups: Vec<(Arc<Conn>, Vec<u8>)> = Vec::new();
            for (j, m) in batch.iter().zip(outs.iter()) {
                let flags = match &j.work {
                    Work::Sketch(r) => r.flags,
                    _ => unreachable!(),
                };
                let body = if flags & sketch_flags::CHECKSUM_ONLY != 0 {
                    SketchResult::Checksum {
                        d: d as u64,
                        n: n as u64,
                        batch: bsz,
                        fro: m.fro_norm(),
                        xor: m.as_slice().iter().fold(0u64, |acc, v| acc ^ v.to_bits()),
                    }
                } else {
                    SketchResult::Full {
                        d: d as u64,
                        n: n as u64,
                        batch: bsz,
                        data: m.as_slice().to_vec(),
                    }
                };
                let bytes =
                    Frame::response(Op::Sketch, Status::Ok, j.req_id, body.encode()).encode();
                match groups.iter_mut().find(|(c, _)| Arc::ptr_eq(c, &j.conn)) {
                    Some((_, buf)) => buf.extend_from_slice(&bytes),
                    None => groups.push((Arc::clone(&j.conn), bytes)),
                }
            }
            for (conn, buf) in groups {
                conn.send_bytes(&buf);
            }
        }
        Err(e) => {
            let status = match &e {
                SketchError::InvalidInput(_) | SketchError::DimensionMismatch { .. } => {
                    Status::BadRequest
                }
                SketchError::BudgetExceeded { .. } => Status::Overloaded,
                _ => Status::Internal,
            };
            for j in &batch {
                j.reply_error(status, &e.to_string());
            }
        }
    }
}

fn execute_solve(shared: &Arc<Shared>, job: Job) {
    let req = match &job.work {
        Work::Solve(r) => r.clone(),
        _ => unreachable!("execute_solve is only called for solve jobs"),
    };
    let a = match shared.registry.get(&req.name) {
        Ok(a) => a,
        Err(e) => {
            job.reply_error(Status::NotFound, &e.to_string());
            return;
        }
    };
    let opts = SapOptions {
        gamma: req.gamma as usize,
        seed: req.seed,
        ..SapOptions::default()
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        if faultkit::armed() && faultkit::fire("svc/dispatch") {
            panic!("fault injected: svc/dispatch");
        }
        lstsq::try_solve_sap_with(a.as_ref(), &req.rhs, &opts, &RecoveryPolicy::default())
    }));
    match result {
        Ok(Ok(rep)) => {
            let resp = SolveSapResp {
                iters: rep.iters as u64,
                rank: rep.rank as u64,
                retries: rep.retries,
                fallback_svd: rep.fallback_svd,
                x: rep.x,
            };
            job.conn.send(&Frame::response(
                Op::SolveSap,
                Status::Ok,
                job.req_id,
                resp.encode(),
            ));
        }
        Ok(Err(e)) => {
            let status = match &e {
                SolveError::DimensionMismatch { .. }
                | SolveError::RankDeficient { .. }
                | SolveError::Sketch(SketchError::InvalidInput(_)) => Status::BadRequest,
                _ => Status::Internal,
            };
            job.reply_error(status, &e.to_string());
        }
        Err(p) => {
            job.reply_error(Status::Internal, &panic_payload_to_string(p.as_ref()));
        }
    }
}

fn execute_load(shared: &Arc<Shared>, job: Job) {
    let req = match &job.work {
        Work::Load(r) => r.clone(),
        _ => unreachable!("execute_load is only called for load jobs"),
    };
    let built: Result<CscMatrix<f64>, String> = catch_unwind(AssertUnwindSafe(|| {
        if faultkit::armed() && faultkit::fire("svc/dispatch") {
            panic!("fault injected: svc/dispatch");
        }
        match req.source {
            MatrixSource::Generate {
                m,
                n,
                density,
                seed,
            } => Ok(datagen::uniform_random::<f64>(
                m as usize, n as usize, density, seed,
            )),
            MatrixSource::Inline {
                nrows,
                ncols,
                col_ptr,
                row_idx,
                values,
            } => {
                let a = CscMatrix::try_new(
                    nrows as usize,
                    ncols as usize,
                    col_ptr.into_iter().map(|v| v as usize).collect(),
                    row_idx.into_iter().map(|v| v as usize).collect(),
                    values,
                )
                .map_err(|e| e.to_string())?;
                a.validate().map_err(|e| e.to_string())?;
                Ok(a)
            }
        }
    }))
    .unwrap_or_else(|p| Err(panic_payload_to_string(p.as_ref())));
    let a = match built {
        Ok(a) => a,
        Err(detail) => {
            job.reply_error(Status::BadRequest, &detail);
            return;
        }
    };
    let (nrows, ncols, nnz, bytes) = (
        a.nrows() as u64,
        a.ncols() as u64,
        a.nnz() as u64,
        a.memory_bytes() as u64,
    );
    match shared.registry.insert(&req.name, a) {
        Ok(evicted) => {
            let resp = LoadMatrixResp {
                nrows,
                ncols,
                nnz,
                bytes,
                evicted,
            };
            job.conn.send(&Frame::response(
                Op::LoadMatrix,
                Status::Ok,
                job.req_id,
                resp.encode(),
            ));
        }
        Err(e @ RegistryError::Full { .. }) => job.reply_error(Status::Overloaded, &e.to_string()),
        Err(e) => job.reply_error(Status::Internal, &e.to_string()),
    }
}

// --- stats --------------------------------------------------------------

/// Hand-rolled JSON stats body: counter deltas since startup plus the
/// `svc/*` latency histograms. Built from a fresh [`obskit::snapshot`]
/// diffed against the startup baseline — never from `obskit::reset()`.
fn stats_json(shared: &Arc<Shared>) -> String {
    let snap = obskit::snapshot();
    let deltas = snap.counters_since(&shared.base);
    let mut out = String::with_capacity(512);
    out.push('{');
    out.push_str(&format!(
        "\"uptime_ms\":{}",
        shared.start.elapsed().as_millis()
    ));
    out.push_str(&format!(",\"queue_depth\":{}", shared.queue_depth()));
    out.push_str(&format!(",\"matrices\":{}", shared.registry.len()));
    out.push_str(&format!(
        ",\"registry_bytes\":{}",
        shared.registry.used_bytes()
    ));
    out.push_str(",\"counters\":{");
    for (i, name) in obskit::CTR_NAMES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{}", deltas[i]));
    }
    out.push_str("},\"hists\":{");
    let mut first = true;
    for (path, h) in &snap.hists {
        if !path.starts_with("svc/") {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\"{path}\":{{\"count\":{},\"p50\":{:.1},\"p90\":{:.1},\"p99\":{:.1}}}",
            h.count(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99)
        ));
    }
    out.push_str("}}");
    out
}
