#![warn(missing_docs)]
//! # sketchd — a batching sketch/SAP service over a hand-rolled wire protocol
//!
//! The paper's asymmetry — a fixed sparse `A` multiplied by an *implicit*
//! random `S` that is regenerated from a seed — rewards a resident
//! service: load `A` once, keep it hot, and serve sketch requests that
//! differ only in their seed. This crate is that service, std-only:
//!
//! * [`proto`] — the versioned, CRC-checked, length-prefixed binary frame
//!   protocol (`LoadMatrix`, `Sketch`, `SolveSap`, `Stats`, `Health`,
//!   `Shutdown`), with panic-free decoding.
//! * [`registry`] — named matrix handles under a byte budget with
//!   ref-counted LRU eviction (in-flight requests pin their operand).
//! * [`server`] — acceptor → bounded queue with admission control
//!   (overload rejection, per-request deadlines) → parkit workers whose
//!   batcher coalesces compatible `Sketch` requests into one
//!   [`sketchcore::sketch_alg3_multi`] traversal of `A`.
//! * [`client`] — blocking client + connection pool (the `sketchclient`
//!   side), used by `sketchctl`, the bench crate's `loadgen`, and the
//!   integration tests.
//!
//! Faults injected at the `svc/accept`, `svc/decode`, `svc/dispatch` and
//! `svc/reply` failpoints surface as typed error frames, never as a
//! poisoned queue or a dead worker — chaoscheck sweeps all four.

pub mod client;
pub mod proto;
pub mod registry;
pub mod server;

pub use client::{Client, ClientError, Pool};
pub use proto::{Frame, Op, Status};
pub use registry::{Registry, RegistryError};
pub use server::{Server, ServerConfig};
