//! The resident-matrix registry: named CSC handles under a byte budget.
//!
//! The service's reason to exist is that `A` stays hot while requests only
//! vary the sketch seed — so matrices are loaded once, validated once,
//! and pinned in memory by name. The registry enforces a byte budget
//! (default: a quarter of [`sketchcore::robust::memory_budget_bytes`], the
//! same `SKETCH_MEM_BUDGET` knob the sketch planner honors) by evicting
//! least-recently-used entries — but only entries no in-flight request
//! holds: each `get` hands out an `Arc`, and an entry whose `Arc` is still
//! shared is skipped by eviction. A load that cannot fit even after
//! evicting every idle entry is refused with [`RegistryError::Full`],
//! which the wire layer maps to `Status::Overloaded`.

use sparsekit::CscMatrix;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Why a registry operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// No entry under that name.
    NotFound(String),
    /// The budget cannot fit the new entry even after evicting everything
    /// evictable.
    Full {
        /// Bytes the new entry needs.
        need: u64,
        /// Bytes still pinned by in-flight requests (plus the budget
        /// shortfall context).
        budget: u64,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NotFound(n) => write!(f, "matrix {n:?} is not loaded"),
            RegistryError::Full { need, budget } => {
                write!(
                    f,
                    "registry full: {need} bytes requested against budget {budget}"
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {}

struct Entry {
    matrix: Arc<CscMatrix<f64>>,
    bytes: u64,
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    clock: u64,
    total: u64,
}

/// Named, budgeted, LRU-evicting store of validated CSC matrices.
pub struct Registry {
    inner: Mutex<Inner>,
    budget: u64,
}

impl Registry {
    /// A registry with an explicit byte budget.
    pub fn new(budget: u64) -> Registry {
        Registry {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                total: 0,
            }),
            budget,
        }
    }

    /// The default serving budget: a quarter of the planner's
    /// `SKETCH_MEM_BUDGET`, leaving headroom for sketch outputs and batch
    /// buffers.
    pub fn default_budget() -> u64 {
        sketchcore::robust::memory_budget_bytes() / 4
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Install `matrix` under `name`, replacing any existing entry with
    /// that name and evicting idle LRU entries until it fits. Returns the
    /// number of entries evicted (not counting the same-name replacement).
    ///
    /// The matrix must already be validated — the wire layer validates at
    /// load time precisely so every later request can skip it.
    pub fn insert(&self, name: &str, matrix: CscMatrix<f64>) -> Result<u64, RegistryError> {
        let bytes = matrix.memory_bytes() as u64;
        let mut g = self.lock();
        if let Some(old) = g.entries.remove(name) {
            g.total -= old.bytes;
        }
        if bytes > self.budget {
            return Err(RegistryError::Full {
                need: bytes,
                budget: self.budget,
            });
        }
        let mut evicted = 0u64;
        while g.total + bytes > self.budget {
            // Oldest idle entry. `strong_count == 1` means only the registry
            // holds it: no in-flight request can lose its operand mid-batch.
            let victim = g
                .entries
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.matrix) == 1)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(e) = g.entries.remove(&k) {
                        g.total -= e.bytes;
                        evicted += 1;
                    }
                }
                None => {
                    return Err(RegistryError::Full {
                        need: bytes,
                        budget: self.budget.saturating_sub(g.total),
                    })
                }
            }
        }
        g.clock += 1;
        let last_used = g.clock;
        g.total += bytes;
        g.entries.insert(
            name.to_string(),
            Entry {
                matrix: Arc::new(matrix),
                bytes,
                last_used,
            },
        );
        Ok(evicted)
    }

    /// Fetch a handle, bumping its LRU position. The returned `Arc` pins
    /// the entry against eviction for as long as the caller holds it.
    pub fn get(&self, name: &str) -> Result<Arc<CscMatrix<f64>>, RegistryError> {
        let mut g = self.lock();
        g.clock += 1;
        let clock = g.clock;
        match g.entries.get_mut(name) {
            Some(e) => {
                e.last_used = clock;
                Ok(Arc::clone(&e.matrix))
            }
            None => Err(RegistryError::NotFound(name.to_string())),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when nothing is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes currently charged against the budget.
    pub fn used_bytes(&self) -> u64 {
        self.lock().total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(n: usize) -> CscMatrix<f64> {
        CscMatrix::identity(n)
    }

    #[test]
    fn insert_get_replace() {
        let r = Registry::new(1 << 20);
        r.insert("a", ident(10)).unwrap();
        assert_eq!(r.get("a").unwrap().ncols(), 10);
        r.insert("a", ident(20)).unwrap();
        assert_eq!(r.get("a").unwrap().ncols(), 20);
        assert_eq!(r.len(), 1);
        assert!(matches!(r.get("b"), Err(RegistryError::NotFound(_))));
    }

    #[test]
    fn lru_eviction_order() {
        let bytes = ident(50).memory_bytes() as u64;
        // Budget fits two entries of this size, not three.
        let r = Registry::new(bytes * 2 + bytes / 2);
        r.insert("a", ident(50)).unwrap();
        r.insert("b", ident(50)).unwrap();
        // Touch "a" so "b" becomes the LRU victim.
        let _ = r.get("a").unwrap();
        let evicted = r.insert("c", ident(50)).unwrap();
        assert_eq!(evicted, 1);
        assert!(r.get("a").is_ok());
        assert!(matches!(r.get("b"), Err(RegistryError::NotFound(_))));
        assert!(r.get("c").is_ok());
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let bytes = ident(50).memory_bytes() as u64;
        let r = Registry::new(bytes * 2 + bytes / 2);
        r.insert("a", ident(50)).unwrap();
        r.insert("b", ident(50)).unwrap();
        // Pin the LRU entry the way an in-flight request would.
        let pinned = r.get("a").unwrap();
        let _ = r.get("b").unwrap();
        // "a" is older but pinned, so "b" goes instead.
        r.insert("c", ident(50)).unwrap();
        assert!(r.get("a").is_ok());
        assert!(matches!(r.get("b"), Err(RegistryError::NotFound(_))));
        drop(pinned);
    }

    #[test]
    fn over_budget_with_everything_pinned_is_full() {
        let bytes = ident(50).memory_bytes() as u64;
        let r = Registry::new(bytes + bytes / 2);
        r.insert("a", ident(50)).unwrap();
        let _pin = r.get("a").unwrap();
        assert!(matches!(
            r.insert("b", ident(50)),
            Err(RegistryError::Full { .. })
        ));
        // And a single matrix bigger than the whole budget is refused
        // outright.
        let tiny = Registry::new(16);
        assert!(matches!(
            tiny.insert("x", ident(50)),
            Err(RegistryError::Full { .. })
        ));
    }
}
