//! Wire-protocol property tests: seeded fuzz over encode/decode.
//!
//! The invariant under test is the one the server's connection threads
//! rely on: `proto::decode` over *arbitrary* bytes either yields a frame
//! or a typed [`DecodeError`] — it never panics, never allocates
//! unboundedly, and always reports `Truncated` (and only `Truncated`) for
//! prefixes of valid frames. Randomness is a seeded LCG so every failure
//! is reproducible.

use sketchd::proto::{
    self, decode, DecodeError, Frame, LoadMatrixReq, Op, SketchReq, SketchResult, SolveSapReq,
    Status, HEADER_LEN, MAX_PAYLOAD,
};

/// Deterministic 64-bit LCG (same constants as the kernels' test helper).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn random_frame(rng: &mut Lcg) -> Frame {
    let op = match rng.below(6) {
        0 => Op::LoadMatrix,
        1 => Op::Sketch,
        2 => Op::SolveSap,
        3 => Op::Stats,
        4 => Op::Health,
        _ => Op::Shutdown,
    };
    let status = match rng.below(7) {
        0 => Status::Ok,
        1 => Status::Overloaded,
        2 => Status::DeadlineExceeded,
        3 => Status::BadRequest,
        4 => Status::NotFound,
        5 => Status::Internal,
        _ => Status::ShuttingDown,
    };
    let payload: Vec<u8> = (0..rng.below(256)).map(|_| rng.next() as u8).collect();
    Frame {
        op,
        status,
        req_id: rng.next(),
        deadline_ms: rng.next() as u32,
        payload,
    }
}

#[test]
fn random_frames_roundtrip_bitwise() {
    let mut rng = Lcg(0xF00D);
    for _ in 0..500 {
        let f = random_frame(&mut rng);
        let bytes = f.encode();
        let (g, used) = decode(&bytes).expect("valid frame must decode");
        assert_eq!(used, bytes.len());
        assert_eq!(f, g);
        // Concatenated frames decode one at a time.
        let mut twice = bytes.clone();
        twice.extend_from_slice(&bytes);
        let (g2, used2) = decode(&twice).expect("first of two frames");
        assert_eq!((used2, &g2), (bytes.len(), &f));
    }
}

#[test]
fn every_truncation_of_a_valid_frame_is_truncated_not_panic() {
    let mut rng = Lcg(0xBEEF);
    for _ in 0..50 {
        let f = random_frame(&mut rng);
        let bytes = f.encode();
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(DecodeError::Truncated { need, got }) => {
                    assert_eq!(got, cut);
                    assert!(need > cut, "need {need} must exceed available {cut}");
                    assert!(need <= bytes.len());
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }
}

#[test]
fn single_byte_corruption_never_panics_and_is_typed() {
    let mut rng = Lcg(0xC0FFEE);
    for _ in 0..200 {
        let f = random_frame(&mut rng);
        let mut bytes = f.encode();
        let pos = rng.below(bytes.len() as u64) as usize;
        let bit = 1u8 << rng.below(8);
        bytes[pos] ^= bit;
        match decode(&bytes) {
            // Corrupting op/status/req_id/deadline bytes can yield a
            // different but still-valid frame; anything else must be a
            // typed error.
            Ok((g, used)) => {
                assert_eq!(used, bytes.len());
                assert!(
                    (6..20).contains(&pos),
                    "corruption at {pos} decoded Ok but only header bytes 6..20 are CRC-exempt: {g:?}"
                );
            }
            Err(
                DecodeError::BadMagic(_)
                | DecodeError::BadVersion(_)
                | DecodeError::UnknownOp(_)
                | DecodeError::UnknownStatus(_)
                | DecodeError::Oversized { .. }
                | DecodeError::BadCrc { .. }
                | DecodeError::Truncated { .. },
            ) => {}
            Err(e) => panic!("unexpected decode error class: {e:?}"),
        }
    }
}

#[test]
fn oversized_length_is_rejected_before_allocation() {
    let f = Frame::request(Op::Sketch, 1, 0, vec![0; 8]);
    let mut bytes = f.encode();
    // Rewrite payload_len to MAX_PAYLOAD + 1 — decode must refuse on the
    // declared length alone, without waiting for (or allocating) 64 MiB.
    bytes[20..24].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    match decode(&bytes) {
        Err(DecodeError::Oversized { len, max }) => {
            assert_eq!(len, MAX_PAYLOAD + 1);
            assert_eq!(max, MAX_PAYLOAD);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = Lcg(0xDADA);
    for _ in 0..500 {
        let len = rng.below(96) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // Any result is fine; the property is "no panic, no hang".
        let _ = decode(&garbage);
    }
    // And garbage that starts with valid magic + version still can't panic.
    for _ in 0..500 {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&proto::MAGIC.to_le_bytes());
        bytes.extend_from_slice(&proto::VERSION.to_le_bytes());
        let extra = rng.below(64) as usize;
        bytes.extend((0..extra).map(|_| rng.next() as u8));
        let _ = decode(&bytes);
    }
}

#[test]
fn fuzzed_payload_bodies_never_panic_their_parsers() {
    let mut rng = Lcg(0x5EED);
    for _ in 0..2000 {
        let len = rng.below(160) as usize;
        let body: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let _ = LoadMatrixReq::decode(&body);
        let _ = SketchReq::decode(&body);
        let _ = SolveSapReq::decode(&body);
        let _ = SketchResult::decode(&body);
    }
    // Hostile vector counts: a huge declared count over a short body must
    // be a typed error (bounds-checked before allocation).
    let mut evil = Vec::new();
    evil.extend_from_slice(&4u32.to_le_bytes());
    evil.extend_from_slice(b"name");
    evil.extend_from_slice(&2u64.to_le_bytes()); // gamma
    evil.extend_from_slice(&7u64.to_le_bytes()); // seed
    evil.extend_from_slice(&u32::MAX.to_le_bytes()); // rhs count: 4 billion
    evil.extend_from_slice(&[1, 2, 3]);
    assert!(matches!(
        SolveSapReq::decode(&evil),
        Err(DecodeError::BadPayload(_))
    ));
}

#[test]
fn header_with_wrong_magic_or_version_is_rejected_up_front() {
    let f = Frame::request(Op::Health, 9, 0, Vec::new());
    let mut bad_magic = f.encode();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(decode(&bad_magic), Err(DecodeError::BadMagic(_))));
    let mut bad_version = f.encode();
    bad_version[4] = 0x7F;
    assert!(matches!(
        decode(&bad_version),
        Err(DecodeError::BadVersion(_))
    ));
    let mut bad_op = f.encode();
    bad_op[6] = 0xEE;
    assert!(matches!(decode(&bad_op), Err(DecodeError::UnknownOp(0xEE))));
    let mut bad_status = f.encode();
    bad_status[7] = 0xEE;
    assert!(matches!(
        decode(&bad_status),
        Err(DecodeError::UnknownStatus(0xEE))
    ));
    assert_eq!(HEADER_LEN, 28, "header layout is part of the wire contract");
}
