//! Fault-injection regressions for the service, isolated in their own
//! test binary because faultkit plans are process-global: a plan armed
//! here must never leak into the clean-path service tests.
//!
//! The headline regression (PR 5 satellite): a worker dying mid-request
//! cannot poison the shared queue — one injected fault yields exactly one
//! typed error frame, and the *next* request on the same connection
//! succeeds against the same worker pool.
//!
//! Tests run serially under a shared lock (cargo's default parallelism
//! would otherwise interleave two process-global fault plans).

use sketchd::client::Client;
use sketchd::proto::{SketchResult, Status};
use sketchd::{Server, ServerConfig};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct Armed;

impl Armed {
    fn new(spec: &str) -> Armed {
        faultkit::set_plan_str(spec, 0xFA17).expect("valid plan");
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        faultkit::clear();
    }
}

fn start() -> Server {
    obskit::set_enabled(true);
    Server::start(ServerConfig::default()).expect("bind")
}

fn load_test_matrix(c: &mut Client, name: &str) {
    let n = 16usize;
    let mut col_ptr = vec![0u64];
    let mut row_idx = Vec::new();
    let mut values = Vec::new();
    for j in 0..n {
        for i in j.saturating_sub(1)..(j + 2).min(n) {
            row_idx.push(i as u64);
            values.push(((i * 5 + j) % 9) as f64 / 9.0 + 0.5);
        }
        col_ptr.push(row_idx.len() as u64);
    }
    c.load_inline(name, n as u64, n as u64, col_ptr, row_idx, values)
        .expect("load");
}

/// One dispatch fault → one Internal frame → same connection, same worker
/// pool, next request is served. The queue is not poisoned and the worker
/// did not die.
#[test]
fn dispatch_panic_yields_one_error_frame_then_recovers() {
    let _g = fault_lock();
    let server = start();
    let mut c = Client::connect(server.addr(), Duration::from_secs(30)).expect("connect");
    load_test_matrix(&mut c, "f1");
    {
        let _armed = Armed::new("svc/dispatch=once");
        let err = c
            .sketch("f1", 8, 4, 4, 1, 0, 0)
            .expect_err("fault must surface");
        assert_eq!(err.status(), Some(Status::Internal), "got {err}");
        let detail = format!("{err}");
        assert!(
            detail.contains("svc/dispatch"),
            "error frame should carry the panic: {detail}"
        );
    }
    // The very next request on the same connection succeeds.
    let ok = c
        .sketch("f1", 8, 4, 4, 1, 0, 0)
        .expect("worker pool must survive the fault");
    assert!(matches!(ok, SketchResult::Full { .. }));
    // And the service remains healthy end to end.
    let h = c.health().expect("health");
    assert_eq!(h.queue_depth, 0, "no zombie jobs after a contained fault");
    c.shutdown().expect("shutdown");
    server.join();
}

/// An injected decode fault is a per-request BadRequest; the connection
/// survives and the next request succeeds.
#[test]
fn decode_fault_is_a_typed_bad_request_and_connection_survives() {
    let _g = fault_lock();
    let server = start();
    let mut c = Client::connect(server.addr(), Duration::from_secs(30)).expect("connect");
    load_test_matrix(&mut c, "f2");
    {
        let _armed = Armed::new("svc/decode=once");
        let err = c
            .sketch("f2", 8, 4, 4, 2, 0, 0)
            .expect_err("fault must surface");
        assert_eq!(err.status(), Some(Status::BadRequest), "got {err}");
    }
    let ok = c
        .sketch("f2", 8, 4, 4, 2, 0, 0)
        .expect("connection must survive");
    assert!(matches!(ok, SketchResult::Full { .. }));
    c.shutdown().expect("shutdown");
    server.join();
}

/// A dropped accept (`svc/accept`) kills only that one connection attempt;
/// the next connect is served.
#[test]
fn accept_fault_drops_one_connection_only() {
    let _g = fault_lock();
    let server = start();
    {
        let _armed = Armed::new("svc/accept=once");
        // This connection is accepted then immediately dropped by the
        // failpoint: the first request errs out rather than hanging.
        let result = Client::connect(server.addr(), Duration::from_millis(500))
            .and_then(|mut c| c.health().map(|_| ()));
        assert!(result.is_err(), "faulted accept must not serve");
    }
    let mut c = Client::connect(server.addr(), Duration::from_secs(30)).expect("reconnect");
    c.health()
        .expect("server must accept again after the fault");
    c.shutdown().expect("shutdown");
    server.join();
}

/// A killed reply write (`svc/reply`) closes that client's connection;
/// the worker moves on and other connections are unaffected.
#[test]
fn reply_fault_kills_one_connection_not_the_worker() {
    let _g = fault_lock();
    let server = start();
    let mut c = Client::connect(server.addr(), Duration::from_secs(30)).expect("connect");
    load_test_matrix(&mut c, "f4");
    {
        let _armed = Armed::new("svc/reply=once");
        let result = c.sketch("f4", 8, 4, 4, 3, 0, 0);
        assert!(
            result.is_err(),
            "reply was shot down; client must see an error, not a hang"
        );
    }
    // A fresh connection is served by the same (alive) worker pool.
    let mut c2 = Client::connect(server.addr(), Duration::from_secs(30)).expect("reconnect");
    let ok = c2
        .sketch("f4", 8, 4, 4, 3, 0, 0)
        .expect("worker survived the reply fault");
    assert!(matches!(ok, SketchResult::Full { .. }));
    c2.shutdown().expect("shutdown");
    server.join();
}

/// Repeated dispatch faults (`every:2`) interleave error and success
/// frames without ever wedging the queue.
#[test]
fn alternating_faults_never_wedge_the_queue() {
    let _g = fault_lock();
    let server = start();
    let mut c = Client::connect(server.addr(), Duration::from_secs(30)).expect("connect");
    load_test_matrix(&mut c, "f5");
    let mut errors = 0;
    let mut oks = 0;
    {
        let _armed = Armed::new("svc/dispatch=every:2");
        for s in 0..8u64 {
            match c.sketch("f5", 8, 4, 4, s, 0, 0) {
                Ok(_) => oks += 1,
                Err(e) => {
                    assert_eq!(e.status(), Some(Status::Internal), "got {e}");
                    errors += 1;
                }
            }
        }
    }
    assert!(
        errors >= 2,
        "every:2 over 8 requests must fire repeatedly (saw {errors})"
    );
    assert!(
        oks >= 2,
        "non-faulted requests must keep succeeding (saw {oks})"
    );
    c.shutdown().expect("shutdown");
    server.join();
}
