//! End-to-end service tests against an in-process `sketchd` server:
//! request/response correctness, the batching bitwise contract, admission
//! control (deadlines, overload), snapshot-and-diff `Stats`, registry
//! eviction over the wire, and clean shutdown.
//!
//! Fault-injection paths live in `tests/faults.rs` — a separate test
//! binary, because faultkit plans are process-global and must not leak
//! into these tests' requests.

use rngkit::{FastRng, UnitUniform};
use sketchcore::SketchConfig;
use sketchd::client::Client;
use sketchd::proto::{self, sketch_flags, Frame, Op, SketchResult, Status};
use sketchd::{Server, ServerConfig};
use sparsekit::CscMatrix;
use std::time::Duration;

fn start(cfg: ServerConfig) -> Server {
    obskit::set_enabled(true);
    Server::start(cfg).expect("bind ephemeral port")
}

fn client(server: &Server) -> Client {
    Client::connect(server.addr(), Duration::from_secs(30)).expect("connect")
}

/// A small deterministic CSC matrix plus its wire parts.
fn test_matrix(n: usize) -> (CscMatrix<f64>, Vec<u64>, Vec<u64>, Vec<f64>) {
    // Tridiagonal-ish: dense enough to be a real traversal, small enough
    // for fast tests.
    let mut col_ptr = vec![0usize];
    let mut row_idx = Vec::new();
    let mut values = Vec::new();
    for j in 0..n {
        for i in j.saturating_sub(1)..(j + 2).min(n) {
            row_idx.push(i);
            values.push(((i * 7 + j * 3) % 11) as f64 / 11.0 + 0.25);
        }
        col_ptr.push(row_idx.len());
    }
    let a = CscMatrix::try_new(n, n, col_ptr.clone(), row_idx.clone(), values.clone())
        .expect("valid parts");
    (
        a,
        col_ptr.iter().map(|&v| v as u64).collect(),
        row_idx.iter().map(|&v| v as u64).collect(),
        values,
    )
}

#[test]
fn sketch_roundtrip_is_bitwise_identical_to_local() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    let (a, col_ptr, row_idx, values) = test_matrix(24);
    let resp = c
        .load_inline("rt", 24, 24, col_ptr, row_idx, values)
        .expect("load");
    assert_eq!((resp.nrows, resp.ncols), (24, 24));
    assert_eq!(resp.nnz as usize, a.nnz());

    let (d, b_d, b_n, seed) = (16u64, 8u64, 6u64, 0xAB5u64);
    let got = c.sketch("rt", d, b_d, b_n, seed, 0, 0).expect("sketch");
    let cfg = SketchConfig::new(d as usize, b_d as usize, b_n as usize, seed);
    let sampler = UnitUniform::<f64>::sampler(FastRng::new(seed));
    let want = sketchcore::sketch_alg3(&a, &cfg, &sampler);
    match got {
        SketchResult::Full {
            d: gd, n: gn, data, ..
        } => {
            assert_eq!((gd as usize, gn as usize), (want.nrows(), want.ncols()));
            assert_eq!(
                data.as_slice(),
                want.as_slice(),
                "service sketch must be bitwise local"
            );
        }
        other => panic!("expected full body, got {other:?}"),
    }

    // Checksum mode agrees with the locally computed reference.
    let sum = c
        .sketch("rt", d, b_d, b_n, seed, sketch_flags::CHECKSUM_ONLY, 0)
        .expect("checksum");
    match sum {
        SketchResult::Checksum { fro, xor, .. } => {
            assert_eq!(fro.to_bits(), want.fro_norm().to_bits());
            let want_xor = want
                .as_slice()
                .iter()
                .fold(0u64, |acc, v| acc ^ v.to_bits());
            assert_eq!(xor, want_xor);
        }
        other => panic!("expected checksum body, got {other:?}"),
    }

    c.shutdown().expect("shutdown");
    server.join();
}

/// The tentpole end-to-end: concurrent compatible requests are coalesced
/// into one traversal, and every batched response is bitwise identical to
/// a sequential local sketch with the same seed.
#[test]
fn batched_requests_are_bitwise_and_actually_batch() {
    let server = start(ServerConfig {
        worker_delay_ms: 120, // lets the queue fill while job 1 is in service
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let mut c = client(&server);
    let (a, col_ptr, row_idx, values) = test_matrix(20);
    c.load_inline("bt", 20, 20, col_ptr, row_idx, values)
        .expect("load");

    let (d, b_d, b_n) = (12u64, 6u64, 5u64);
    let k = 4;
    let handles: Vec<_> = (0..k)
        .map(|r| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, Duration::from_secs(30)).expect("connect");
                let seed = 7000 + r as u64;
                let got = c.sketch("bt", d, b_d, b_n, seed, 0, 0).expect("sketch");
                (seed, got)
            })
        })
        .collect();
    let mut max_batch = 0u32;
    for h in handles {
        let (seed, got) = h.join().expect("worker thread");
        let cfg = SketchConfig::new(d as usize, b_d as usize, b_n as usize, seed);
        let sampler = UnitUniform::<f64>::sampler(FastRng::new(seed));
        let want = sketchcore::sketch_alg3(&a, &cfg, &sampler);
        match got {
            SketchResult::Full { data, batch, .. } => {
                assert_eq!(
                    data.as_slice(),
                    want.as_slice(),
                    "seed {seed} diverged under batching"
                );
                max_batch = max_batch.max(batch);
            }
            other => panic!("expected full body, got {other:?}"),
        }
    }
    assert!(
        max_batch >= 2,
        "with a 120ms service delay and {k} concurrent requests, at least one \
         batch of >= 2 must form (got max batch {max_batch})"
    );

    // NO_BATCH requests never coalesce, even under the same pressure.
    let handles: Vec<_> = (0..k)
        .map(|r| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, Duration::from_secs(30)).expect("connect");
                c.sketch(
                    "bt",
                    d,
                    b_d,
                    b_n,
                    9000 + r as u64,
                    sketch_flags::NO_BATCH,
                    0,
                )
                .expect("sketch")
                .batch()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(
            h.join().expect("thread"),
            1,
            "NO_BATCH request rode in a batch"
        );
    }

    c.shutdown().expect("shutdown");
    server.join();
}

/// Pipelined requests on one connection: the window goes out in one write,
/// the server coalesces the whole window into one batch (replying with one
/// coalesced write), and every slot is bitwise identical to a sequential
/// local sketch with that slot's seed, in request order.
#[test]
fn pipelined_window_is_batched_and_bitwise() {
    let server = start(ServerConfig {
        worker_delay_ms: 80, // lets the full window queue before dispatch
        ..ServerConfig::default()
    });
    let mut c = client(&server);
    let (a, col_ptr, row_idx, values) = test_matrix(18);
    c.load_inline("pl", 18, 18, col_ptr, row_idx, values)
        .expect("load");

    let (d, b_d, b_n) = (10u64, 5u64, 6u64);
    let seeds: Vec<u64> = (0..6u64).map(|r| 4400 + r).collect();
    let results = c
        .sketch_many("pl", d, b_d, b_n, &seeds, 0, 0)
        .expect("pipeline");
    assert_eq!(results.len(), seeds.len());
    let mut max_batch = 0u32;
    for (seed, got) in seeds.iter().zip(results) {
        let cfg = SketchConfig::new(d as usize, b_d as usize, b_n as usize, *seed);
        let sampler = UnitUniform::<f64>::sampler(FastRng::new(*seed));
        let want = sketchcore::sketch_alg3(&a, &cfg, &sampler);
        match got.expect("pipelined sketch") {
            SketchResult::Full { data, batch, .. } => {
                assert_eq!(
                    data.as_slice(),
                    want.as_slice(),
                    "seed {seed} diverged in the pipelined batch"
                );
                max_batch = max_batch.max(batch);
            }
            other => panic!("expected full body, got {other:?}"),
        }
    }
    assert!(
        max_batch >= 2,
        "a pipelined window behind an 80ms delay must coalesce (max batch {max_batch})"
    );

    // A bad name mid-window errors only its own slot; later slots and the
    // connection itself survive.
    let mixed = c
        .sketch_many("no-such", d, b_d, b_n, &[1, 2], 0, 0)
        .expect("transport ok");
    assert!(mixed.iter().all(|r| matches!(
        r,
        Err(e) if e.status() == Some(Status::NotFound)
    )));
    let ok = c
        .sketch("pl", d, b_d, b_n, 1, 0, 0)
        .expect("connection survives");
    assert!(matches!(ok, SketchResult::Full { .. }));

    c.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn expired_deadline_is_rejected_without_running() {
    let server = start(ServerConfig {
        worker_delay_ms: 150,
        ..ServerConfig::default()
    });
    let mut c = client(&server);
    let (_, col_ptr, row_idx, values) = test_matrix(12);
    c.load_inline("dl", 12, 12, col_ptr, row_idx, values)
        .expect("load");
    // 1ms deadline against a 150ms service delay: must come back
    // DeadlineExceeded, not Ok and not a hang.
    let err = c
        .sketch("dl", 8, 4, 4, 1, 0, 1)
        .expect_err("deadline must expire");
    assert_eq!(err.status(), Some(Status::DeadlineExceeded), "got {err}");
    // The connection is still usable afterwards.
    let ok = c.sketch("dl", 8, 4, 4, 1, 0, 0).expect("no deadline");
    assert!(matches!(ok, SketchResult::Full { .. }));
    c.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn overload_is_rejected_with_a_typed_frame() {
    let server = start(ServerConfig {
        queue_cap: 1,
        worker_delay_ms: 300,
        ..ServerConfig::default()
    });
    let mut c = client(&server);
    let (_, col_ptr, row_idx, values) = test_matrix(12);
    c.load_inline("ov", 12, 12, col_ptr, row_idx, values)
        .expect("load");

    // Fire 5 requests down one connection without waiting for replies;
    // with queue_cap=1 and a slow worker, admission must reject some with
    // Overloaded while the rest are served.
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = sketchd::proto::SketchReq {
        name: "ov".into(),
        d: 8,
        b_d: 4,
        b_n: 4,
        seed: 5,
        flags: 0,
    };
    for id in 0..5u64 {
        let frame = Frame::request(Op::Sketch, id, 0, req.encode());
        proto::write_frame(&mut raw, &frame).expect("write");
    }
    let mut reader = proto::FrameReader::new();
    let mut ok = 0;
    let mut overloaded = 0;
    for _ in 0..5 {
        let f = loop {
            match reader.next_frame(&mut raw) {
                Ok(f) => break f,
                Err(proto::FrameReadError::TimedOut) => continue,
                Err(e) => panic!("reply read failed: {e}"),
            }
        };
        match f.status {
            Status::Ok => ok += 1,
            Status::Overloaded => overloaded += 1,
            s => panic!("unexpected status {s:?}"),
        }
    }
    assert!(ok >= 1, "some requests must be served");
    assert!(
        overloaded >= 1,
        "queue_cap=1 under 5 back-to-back requests must shed load"
    );
    c.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn concurrent_stats_snapshot_and_diff_is_monotone() {
    let server = start(ServerConfig::default());
    let addr = server.addr();
    let mut c = client(&server);
    let (_, col_ptr, row_idx, values) = test_matrix(12);
    c.load_inline("st", 12, 12, col_ptr, row_idx, values)
        .expect("load");

    // Two threads hammer Stats while a third submits work; every Stats
    // body must parse and the svc.accepted delta must be monotone within
    // each thread (snapshot-and-diff over monotone counters — no reset).
    let stats_thread = move |n: usize| {
        let mut c = Client::connect(addr, Duration::from_secs(30)).expect("connect");
        let mut last = 0i64;
        for _ in 0..n {
            let body = c.stats().expect("stats");
            let accepted = json_u64(&body, "svc.accepted") as i64;
            assert!(
                accepted >= last,
                "svc.accepted went backwards: {last} -> {accepted} in {body}"
            );
            last = accepted;
        }
        last
    };
    let work = std::thread::spawn(move || {
        let mut c = Client::connect(addr, Duration::from_secs(30)).expect("connect");
        for s in 0..10 {
            let _ = c.sketch("st", 8, 4, 4, s, 0, 0).expect("sketch");
        }
    });
    let s1 = std::thread::spawn(move || stats_thread(20));
    let s2 = std::thread::spawn(move || stats_thread(20));
    work.join().expect("work thread");
    let (a1, a2) = (s1.join().expect("stats 1"), s2.join().expect("stats 2"));
    // After all 10 sketches completed, a final Stats must see them.
    let final_accepted = json_u64(&c.stats().expect("stats"), "svc.accepted");
    assert!(
        final_accepted >= 10,
        "expected >= 10 accepted, saw {final_accepted}"
    );
    assert!(a1 >= 0 && a2 >= 0);
    c.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn registry_eviction_over_the_wire() {
    // Budget sized for roughly one matrix: the second load evicts the
    // first, and sketching the evicted name is NotFound.
    let (a, _, _, _) = test_matrix(64);
    let budget = (a.memory_bytes() as u64 * 3) / 2;
    let server = start(ServerConfig {
        registry_budget: budget,
        ..ServerConfig::default()
    });
    let mut c = client(&server);
    let load = |c: &mut Client, name: &str| {
        let (_, col_ptr, row_idx, values) = test_matrix(64);
        c.load_inline(name, 64, 64, col_ptr, row_idx, values)
            .expect("load")
    };
    let first = load(&mut c, "ev1");
    assert_eq!(first.evicted, 0);
    let second = load(&mut c, "ev2");
    assert_eq!(
        second.evicted, 1,
        "budget for ~1.5 matrices must evict the LRU entry"
    );
    let err = c.sketch("ev1", 8, 4, 4, 1, 0, 0).expect_err("evicted name");
    assert_eq!(err.status(), Some(Status::NotFound), "got {err}");
    assert!(matches!(
        c.sketch("ev2", 8, 4, 4, 1, 0, 0),
        Ok(SketchResult::Full { .. })
    ));
    c.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn solve_sap_over_the_wire_matches_local() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    // A well-conditioned tall system from datagen, shipped inline.
    let a = datagen::tall_conditioned(60, 8, 0.4, datagen::CondSpec::WELL, 42);
    c.load_inline(
        "sap",
        a.nrows() as u64,
        a.ncols() as u64,
        a.col_ptr().iter().map(|&v| v as u64).collect(),
        a.row_idx().iter().map(|&v| v as u64).collect(),
        a.values().to_vec(),
    )
    .expect("load");
    let (rhs, _x_true) = datagen::make_rhs(&a, 7);
    let resp = c.solve_sap("sap", 2, 0x5AB, rhs.clone(), 0).expect("solve");
    assert_eq!(resp.x.len(), a.ncols());
    let local = lstsq::try_solve_sap_with(
        &a,
        &rhs,
        &lstsq::SapOptions {
            gamma: 2,
            seed: 0x5AB,
            ..lstsq::SapOptions::default()
        },
        &lstsq::RecoveryPolicy::default(),
    )
    .expect("local solve");
    for (got, want) in resp.x.iter().zip(local.x.iter()) {
        assert!(
            (got - want).abs() <= 1e-10 * (1.0 + want.abs()),
            "{got} vs {want}"
        );
    }
    c.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn bad_requests_get_typed_frames_and_the_connection_survives() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    // Unknown name.
    let err = c
        .sketch("nope", 8, 4, 4, 1, 0, 0)
        .expect_err("unknown name");
    assert_eq!(err.status(), Some(Status::NotFound));
    // Zero d.
    let err = c.sketch("nope", 0, 4, 4, 1, 0, 0).expect_err("d = 0");
    assert_eq!(err.status(), Some(Status::BadRequest));
    // Unknown flags.
    let err = c
        .sketch("nope", 8, 4, 4, 1, 0x8000_0000, 0)
        .expect_err("bad flags");
    assert_eq!(err.status(), Some(Status::BadRequest));
    // Structurally broken inline matrix.
    let err = c
        .load_inline("bad", 4, 2, vec![0, 1], vec![0], vec![1.0])
        .expect_err("short col_ptr");
    assert_eq!(err.status(), Some(Status::BadRequest));
    // After all of that, the same connection still serves work.
    let (_, col_ptr, row_idx, values) = test_matrix(8);
    c.load_inline("fine", 8, 8, col_ptr, row_idx, values)
        .expect("load");
    assert!(matches!(
        c.sketch("fine", 4, 2, 2, 1, 0, 0),
        Ok(SketchResult::Full { .. })
    ));
    c.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn shutdown_drains_and_joins_cleanly() {
    let server = start(ServerConfig {
        worker_delay_ms: 50,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let mut c = client(&server);
    let (_, col_ptr, row_idx, values) = test_matrix(12);
    c.load_inline("sd", 12, 12, col_ptr, row_idx, values)
        .expect("load");
    // Submit work, then shut down from another connection while it is in
    // flight; the queued job must still be answered (drain semantics).
    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr, Duration::from_secs(30)).expect("connect");
        c.sketch("sd", 8, 4, 4, 3, 0, 0)
    });
    std::thread::sleep(Duration::from_millis(10));
    c.shutdown().expect("shutdown");
    let inflight = worker.join().expect("thread");
    assert!(
        inflight.is_ok(),
        "in-flight request must drain through shutdown: {inflight:?}"
    );
    server.join();
    // New connections are refused (or reset) once the listener is gone.
    let post =
        Client::connect(addr, Duration::from_millis(300)).and_then(|mut c| c.health().map(|_| ()));
    assert!(post.is_err(), "server must not serve after join()");
}

#[test]
fn work_after_shutdown_flag_is_refused_as_shutting_down() {
    let server = start(ServerConfig::default());
    let mut c1 = client(&server);
    let mut c2 = client(&server);
    c1.shutdown().expect("shutdown");
    // The second connection races server teardown: acceptable outcomes are
    // a typed ShuttingDown frame or a closed/reset connection — never a
    // hang or a served request.
    match c2.sketch("x", 8, 4, 4, 1, 0, 0) {
        Err(e) => {
            if let Some(s) = e.status() {
                assert!(
                    matches!(s, Status::ShuttingDown | Status::NotFound),
                    "unexpected status {s:?}"
                );
            }
        }
        Ok(r) => panic!("request served after shutdown: {r:?}"),
    }
    server.join();
}

/// Minimal JSON number extraction for the hand-rolled stats body.
fn json_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("{key} missing from {body}"))
        + pat.len();
    body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} not a number in {body}"))
}
